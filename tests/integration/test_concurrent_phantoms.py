"""Randomised concurrent phantom testing across schemes and seeds.

The workhorse correctness test: mixed insert/delete/scan workloads run
under the deterministic simulator, then the history is checked with the
phantom oracle and the conflict-serializability checker.  Sound schemes
must be anomaly-free on every seed; the object-lock baseline must show
anomalies on at least one seed (it allows phantoms by construction).
"""

import random

import pytest

from repro.baselines import ObjectLockIndex, PredicateLockIndex, PredicateLockTable, TreeLockIndex
from repro.concurrency import (
    History,
    SimulatedWait,
    Simulator,
    check_conflict_serializable,
    find_phantoms,
)
from repro.core import InsertionPolicy, PhantomProtectedRTree
from repro.geometry import Rect
from repro.lock import LockManager
from repro.rtree import RTreeConfig, validate_tree
from repro.txn import TransactionAborted

SEEDS = range(4)


def run_mixed_workload(make_index, seed, n_workers=5, txns=4, ops=3):
    sim = Simulator(seed=seed)
    strategy = SimulatedWait(sim)
    history = History()
    index = make_index(strategy, history, sim)

    rng = random.Random(seed)
    objects = {}
    with index.transaction("load") as txn:
        for i in range(60):
            x, y = rng.random() * 0.9, rng.random() * 0.9
            objects[i] = Rect((x, y), (x + 0.04, y + 0.04))
            index.insert(txn, i, objects[i])

    counter = [1000]

    def worker(wid):
        def body():
            r = random.Random(seed * 997 + wid)
            for k in range(txns):
                txn = index.begin(f"w{wid}-{k}")
                try:
                    for _ in range(ops):
                        roll = r.random()
                        x, y = r.random() * 0.85, r.random() * 0.85
                        if roll < 0.40:
                            index.read_scan(txn, Rect((x, y), (x + 0.15, y + 0.15)))
                        elif roll < 0.72:
                            counter[0] += 1
                            index.insert(
                                txn, counter[0], Rect((x, y), (x + 0.03, y + 0.03))
                            )
                        elif roll < 0.88:
                            victim = r.choice(list(objects))
                            index.delete(txn, victim, objects[victim])
                        else:
                            victim = r.choice(list(objects))
                            index.read_single(txn, victim, objects[victim])
                        sim.checkpoint(r.random() * 8)
                    index.commit(txn)
                except TransactionAborted:
                    pass

        return body

    for w in range(n_workers):
        sim.spawn(f"w{w}", worker(w), delay=w * 0.1)
    sim.run()
    sim.raise_process_errors()
    index.vacuum()
    return index, history


def dgl_factory(policy):
    def make(strategy, history, sim):
        lm = LockManager(wait_strategy=strategy)
        return PhantomProtectedRTree(
            RTreeConfig(max_entries=6, universe=Rect((0, 0), (1, 1))),
            lock_manager=lm,
            policy=policy,
            history=history,
            clock=lambda: sim.clock,
        )

    return make


def baseline_factory(cls):
    def make(strategy, history, sim):
        lm = LockManager(wait_strategy=strategy)
        kwargs = {}
        if cls is PredicateLockIndex:
            kwargs["predicate_table"] = PredicateLockTable(strategy)
        return cls(
            RTreeConfig(max_entries=6, universe=Rect((0, 0), (1, 1))),
            lock_manager=lm,
            history=history,
            clock=lambda: sim.clock,
            **kwargs,
        )

    return make


SOUND_SCHEMES = [
    ("dgl-all-paths", dgl_factory(InsertionPolicy.ALL_PATHS)),
    ("dgl-on-growth", dgl_factory(InsertionPolicy.ON_GROWTH)),
    ("dgl-active-searchers", dgl_factory(InsertionPolicy.ON_GROWTH_ACTIVE_SEARCHERS)),
    ("tree-lock", baseline_factory(TreeLockIndex)),
    ("predicate-lock", baseline_factory(PredicateLockIndex)),
]


class TestSoundSchemesArePhantomFree:
    @pytest.mark.parametrize("name,factory", SOUND_SCHEMES, ids=[n for n, _ in SOUND_SCHEMES])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_no_anomalies(self, name, factory, seed):
        index, history = run_mixed_workload(factory, seed)
        reports = find_phantoms(history)
        assert reports == [], f"{name} seed {seed}: {[r.detail for r in reports[:3]]}"
        check_conflict_serializable(history)
        validate_tree(index.tree)


class TestUnsoundSchemesShowPhantoms:
    def test_object_lock_baseline_has_anomalies(self):
        total = 0
        for seed in range(6):
            _index, history = run_mixed_workload(baseline_factory(ObjectLockIndex), seed)
            total += len(find_phantoms(history))
        assert total > 0, "object-level locking should exhibit phantoms"

    def test_naive_dgl_policy_has_anomalies(self):
        total = 0
        for seed in range(6):
            _index, history = run_mixed_workload(dgl_factory(InsertionPolicy.NAIVE), seed)
            total += len(find_phantoms(history))
        assert total > 0, "the naive §3.2 policy should exhibit phantoms"


class TestTreeRemainsConsistentUnderConcurrency:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_dgl_tree_valid_and_complete(self, seed):
        index, history = run_mixed_workload(
            dgl_factory(InsertionPolicy.ON_GROWTH), seed, n_workers=6, txns=4, ops=4
        )
        validate_tree(index.tree)
        # committed state from the history == actual tree contents
        state = dict(history.initial)
        from repro.concurrency.checker import _committed_writes
        from repro.concurrency.history import OpKind

        for _commit_seq, _txn, op in sorted(
            _committed_writes(history), key=lambda t: t[0]
        ):
            if op.kind is OpKind.INSERT:
                state[op.oid] = op.rect
            else:
                state.pop(op.oid, None)
        tree_oids = sorted(str(e.oid) for e in index.tree.all_entries())
        assert tree_oids == sorted(map(str, state))
