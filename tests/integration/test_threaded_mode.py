"""The index also works with real OS threads (no simulator).

The GIL makes this useless for performance numbers, but functionally the
lock manager's condition-variable wait strategy must deliver the same
isolation.  These tests run genuine threads against one index and check
the usual oracles afterwards.
"""

import random
import threading

from repro.concurrency import History, check_conflict_serializable, find_phantoms
from repro.core import InsertionPolicy, PhantomProtectedRTree
from repro.geometry import Rect
from repro.rtree import RTreeConfig, validate_tree
from repro.txn import TransactionAborted


def test_threaded_mixed_workload_is_phantom_free():
    history = History()
    index = PhantomProtectedRTree(
        RTreeConfig(max_entries=6, universe=Rect((0, 0), (1, 1))),
        policy=InsertionPolicy.ON_GROWTH,
        history=history,
    )
    objects = {}
    rng = random.Random(0)
    with index.transaction("load") as txn:
        for i in range(50):
            x, y = rng.random() * 0.9, rng.random() * 0.9
            objects[i] = Rect((x, y), (x + 0.05, y + 0.05))
            index.insert(txn, i, objects[i])

    counter_lock = threading.Lock()
    counter = [1000]
    errors = []

    def worker(wid):
        r = random.Random(wid)
        for k in range(5):
            txn = index.begin(f"w{wid}-{k}")
            try:
                for _ in range(3):
                    roll = r.random()
                    x, y = r.random() * 0.85, r.random() * 0.85
                    if roll < 0.45:
                        index.read_scan(txn, Rect((x, y), (x + 0.12, y + 0.12)))
                    elif roll < 0.8:
                        with counter_lock:
                            counter[0] += 1
                            oid = counter[0]
                        index.insert(txn, oid, Rect((x, y), (x + 0.03, y + 0.03)))
                    else:
                        victim = r.choice(list(objects))
                        index.delete(txn, victim, objects[victim])
                index.commit(txn)
            except TransactionAborted:
                pass
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)
                if txn.is_active:
                    index.abort(txn, "test error")
                return

    threads = [threading.Thread(target=worker, args=(w,)) for w in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
        assert not t.is_alive(), "worker thread hung"
    assert errors == []

    index.vacuum()
    validate_tree(index.tree)
    assert find_phantoms(history) == []
    check_conflict_serializable(history)


def test_threaded_kdb_workload_is_phantom_free():
    """The simplified K-D-B protocol under real OS threads."""
    from repro.kdbtree import KDBConfig, KDBPhantomIndex

    history = History()
    index = KDBPhantomIndex(KDBConfig(max_entries=6), history=history)
    rng = random.Random(1)
    points = {}
    with index.transaction("load") as txn:
        for i in range(50):
            points[i] = (rng.random(), rng.random())
            index.insert(txn, i, points[i])

    errors = []

    def worker(wid):
        r = random.Random(100 + wid)
        for k in range(4):
            txn = index.begin(f"w{wid}-{k}")
            try:
                for _ in range(3):
                    roll = r.random()
                    if roll < 0.5:
                        x, y = r.random() * 0.8, r.random() * 0.8
                        index.read_scan(txn, Rect((x, y), (x + 0.15, y + 0.15)))
                    elif roll < 0.85:
                        index.insert(txn, f"n{wid}-{k}-{roll}", (r.random(), r.random()))
                    else:
                        victim = r.choice(list(points))
                        index.delete(txn, victim, points[victim])
                index.commit(txn)
            except TransactionAborted:
                pass
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)
                if txn.is_active:
                    index.abort(txn, "test error")
                return

    threads = [threading.Thread(target=worker, args=(w,)) for w in range(5)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
        assert not t.is_alive(), "worker thread hung"
    assert errors == []
    index.vacuum()
    index.tree.validate()
    assert find_phantoms(history) == []
    check_conflict_serializable(history)


def test_threaded_scan_blocks_concurrent_overlapping_insert():
    index = PhantomProtectedRTree(
        RTreeConfig(max_entries=6, universe=Rect((0, 0), (1, 1)))
    )
    with index.transaction("load") as txn:
        for i in range(10):
            index.insert(txn, i, Rect((i / 10, 0.4), (i / 10 + 0.05, 0.45)))

    order = []
    scan_started = threading.Event()
    release_scanner = threading.Event()

    def scanner():
        txn = index.begin("scanner")
        index.read_scan(txn, Rect((0.3, 0.3), (0.6, 0.6)))
        order.append("scanned")
        scan_started.set()
        release_scanner.wait(timeout=30)
        order.append("scanner-commit")
        index.commit(txn)

    def inserter():
        scan_started.wait(timeout=30)
        txn = index.begin("inserter")
        try:
            index.insert(txn, "new", Rect((0.4, 0.41), (0.44, 0.44)))
            order.append("inserted")
            index.commit(txn)
        except TransactionAborted:
            order.append("insert-aborted")

    t1 = threading.Thread(target=scanner)
    t2 = threading.Thread(target=inserter)
    t1.start()
    t2.start()
    # give the inserter a moment to block on the scanner's granule locks
    scan_started.wait(timeout=30)
    import time

    time.sleep(0.3)
    assert "inserted" not in order  # still blocked
    release_scanner.set()
    t1.join(timeout=30)
    t2.join(timeout=30)
    assert not t1.is_alive() and not t2.is_alive()
    assert order.index("scanner-commit") < order.index("inserted")
