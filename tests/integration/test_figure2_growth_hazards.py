"""Figures 2(a)/2(b): phantoms caused by granule growth, and their fix.

Figure 2(a): t1 scans R3 (covered by leaf granule g1 only).  t2 inserts
R4, growing sibling granule g2 over part of R3, and commits.  t3 then
inserts R5 inside the grown g2 ∩ R3.  Under the naive cover-for-insert
policy t3 needs only an IX on g2 -- no conflict with t1 -- and t1's
repeated scan finds R5 "appeared from nowhere".  The paper's protocol
fixes this by making the *boundary-changing* inserter (t2, under the
modified policy; every inserter, under the base policy) take short IX
locks on the granules it grows into, which collide with t1's S lock.

These tests run both the broken (NAIVE) and fixed protocols through the
same interleaving and assert the phantom appears / disappears exactly as
the paper predicts.
"""

import pytest

from repro.concurrency import find_phantoms
from repro.core import InsertionPolicy
from repro.geometry import Rect
from repro.rtree.tree import RTreeConfig
from repro.txn import TransactionAborted

from tests.conftest import build_manual_tree, rect
from tests.integration.util import TEN, adopt_manual_tree, make_sim_index

# Geometry: one parent (the root), two leaf granules.
#   g1 (R1) spans (0,0)-(6,6); g2 (R2) spans (7,1)-(9,2).
G1_OBJECTS = [("a1", rect(0, 0, 1, 1)), ("a2", rect(5, 5, 6, 6))]
G2_OBJECTS = [("b1", rect(7, 1, 7.5, 1.5)), ("b2", rect(8.5, 1.5, 9, 2))]

#: t1's scan predicate: strictly inside g1, away from ext(root)
R3 = rect(4.5, 0.5, 5.5, 1.5)
#: t2's insertion: ChooseLeaf assigns it to g2 (least enlargement), whose
#: growth then sweeps across R3's longitude
R4 = rect(5.0, 1.0, 7.2, 1.8)
#: t3's insertion: inside grown g2, overlapping t1's predicate R3
R5 = rect(5.1, 1.1, 5.4, 1.4)


def setup_index(policy, seed=0):
    sim, index, history = make_sim_index(policy=policy, max_entries=4, seed=seed)
    cfg = RTreeConfig(max_entries=4, min_entries=2, universe=TEN)
    tree, names = build_manual_tree(cfg, [G1_OBJECTS, G2_OBJECTS])
    adopt_manual_tree(index, tree, names)
    return sim, index, history, names


def run_figure_2a(policy):
    sim, index, history, names = setup_index(policy)
    events = []

    def t1():
        txn = index.begin("t1")
        res = index.read_scan(txn, R3)
        events.append(("t1-scan", sim.clock, res.oids))
        sim.checkpoint(100)  # keep the scan's locks held for a while
        # repeat the scan before committing -- the phantom test
        res2 = index.read_scan(txn, R3)
        events.append(("t1-rescan", sim.clock, res2.oids))
        index.commit(txn)
        events.append(("t1-commit", sim.clock))

    def t2():
        sim.checkpoint(5)
        txn = index.begin("t2")
        try:
            index.insert(txn, "R4", R4)
            index.commit(txn)
            events.append(("t2-commit", sim.clock))
        except TransactionAborted:
            events.append(("t2-aborted", sim.clock))

    def t3():
        sim.checkpoint(10)
        txn = index.begin("t3")
        try:
            index.insert(txn, "R5", R5)
            index.commit(txn)
            events.append(("t3-commit", sim.clock))
        except TransactionAborted:
            events.append(("t3-aborted", sim.clock))

    sim.spawn("t1", t1)
    sim.spawn("t2", t2)
    sim.spawn("t3", t3)
    sim.run()
    sim.raise_process_errors()
    return events, history, names


class TestFigure2aGeometry:
    def test_choose_leaf_assigns_r4_to_g2(self):
        _sim, index, _h, names = setup_index(InsertionPolicy.ON_GROWTH)
        plan = index.tree.plan_insert(R4)
        assert plan.leaf_id == names["leaf1"]
        assert plan.leaf_grows

    def test_scan_r3_locks_only_g1(self):
        _sim, index, _h, names = setup_index(InsertionPolicy.ON_GROWTH)
        refs = index.granules.overlapping(R3)
        assert [r.page_id for r in refs] == [names["leaf0"]]

    def test_grown_g2_covers_r5(self):
        _sim, index, _h, names = setup_index(InsertionPolicy.ON_GROWTH)
        index.tree.insert("R4", R4)
        g2 = index.tree.node(names["leaf1"], count_io=False)
        assert g2.mbr().contains(R5)
        assert g2.mbr().intersects(R3)


class TestFigure2aPhantom:
    def test_naive_policy_exhibits_the_phantom(self):
        events, history, _names = run_figure_2a(InsertionPolicy.NAIVE)
        kinds = dict.fromkeys(k for k, *_ in events)
        assert "t3-commit" in kinds
        # t1's rescan saw R5 appear from nowhere
        first = next(e for e in events if e[0] == "t1-scan")
        rescan = next(e for e in events if e[0] == "t1-rescan")
        assert "R5" not in first[2]
        assert "R5" in rescan[2]
        reports = find_phantoms(history)
        assert any(r.kind == "instability" for r in reports)

    @pytest.mark.parametrize(
        "policy",
        [
            InsertionPolicy.ALL_PATHS,
            InsertionPolicy.ON_GROWTH,
            InsertionPolicy.ON_GROWTH_ACTIVE_SEARCHERS,
        ],
    )
    def test_protocol_prevents_the_phantom(self, policy):
        events, history, _names = run_figure_2a(policy)
        first = next(e for e in events if e[0] == "t1-scan")
        rescan = next(e for e in events if e[0] == "t1-rescan")
        # repeatable read: both scans identical
        assert first[2] == rescan[2]
        assert find_phantoms(history) == []
        # the boundary-changing inserter t2 was held until t1 finished
        t1_commit = next(e[1] for e in events if e[0] == "t1-commit")
        for name in ("t2-commit", "t3-commit"):
            done = [e[1] for e in events if e[0] == name]
            if done:
                assert done[0] >= t1_commit


class TestFigure2bReversePolicyScenario:
    """Figure 2(b) attacks the *reverse* policy (cover-for-search).  The
    paper adopts the forward policy instead, under which the analogous
    interleaving is safe: t1 inserts R3 into g1, t2 grows g2 over R3's
    area, and a later scanner t3 of that area must still conflict with t1
    -- because g1 itself grew to cover R3 at insertion time, so t3's scan
    S-locks g1 and waits for t1's commit-duration IX."""

    T1_OBJECT = rect(4.5, 0.5, 5.5, 1.5)  # t1 inserts this into g1
    T2_OBJECT = rect(5.0, 1.0, 7.2, 1.8)  # grows g2 across the same area
    T3_SCAN = rect(4.4, 0.4, 5.6, 1.6)

    def test_scan_blocks_on_uncommitted_insert(self):
        sim, index, history, names = setup_index(InsertionPolicy.ON_GROWTH)
        events = []

        def t1():
            txn = index.begin("t1")
            index.insert(txn, "R3", self.T1_OBJECT)
            events.append(("t1-inserted", sim.clock))
            sim.checkpoint(100)
            index.abort(txn)  # the paper's scenario: t1 rolls back
            events.append(("t1-aborted", sim.clock))

        def t2():
            sim.checkpoint(5)
            txn = index.begin("t2")
            try:
                index.insert(txn, "R4", self.T2_OBJECT)
                index.commit(txn)
                events.append(("t2-commit", sim.clock))
            except TransactionAborted:
                events.append(("t2-victim", sim.clock))

        def t3():
            sim.checkpoint(10)
            txn = index.begin("t3")
            res = index.read_scan(txn, self.T3_SCAN)
            events.append(("t3-scan", sim.clock, res.oids))
            index.commit(txn)

        sim.spawn("t1", t1)
        sim.spawn("t2", t2)
        sim.spawn("t3", t3)
        sim.run()
        sim.raise_process_errors()

        # t3 must not have observed t1's rolled-back insert
        scan = next(e for e in events if e[0] == "t3-scan")
        assert "R3" not in scan[2]
        t1_done = next(e[1] for e in events if e[0] == "t1-aborted")
        assert scan[1] >= t1_done
        assert find_phantoms(history) == []
