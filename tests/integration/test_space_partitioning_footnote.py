"""Footnote 4 of the paper: space-partitioning structures are simpler.

"For those index structures where it is always possible to split a node
into disjoint subspaces (referred to as space partitioning data
structures) like K-D-B-trees, hb-trees etc., the set of leaf granules
alone cover the entire embedded space.  Therefore the external granules
are not required.  Moreover, the granules never overlap with each other."

Our granule machinery realises this automatically: when a tree's leaves
happen to tile their parents exactly (as a K-D-B-tree's always would),
every external granule is geometrically empty, so no operation ever locks
one -- the same protocol degenerates to the simpler scheme by itself.
These tests build perfectly tiling trees and verify that degeneration.
"""

from repro.core import PhantomProtectedRTree
from repro.core.granules import GranuleSet
from repro.geometry import Rect
from repro.lock.resource import Namespace
from repro.rtree.tree import RTreeConfig

from tests.conftest import build_manual_tree, rect
from tests.integration.util import adopt_manual_tree

TEN = Rect((0.0, 0.0), (10.0, 10.0))


def tiling_tree():
    """Four leaves that tile the universe exactly into quadrants, as a
    space-partitioning structure would."""
    cfg = RTreeConfig(max_entries=4, min_entries=2, universe=TEN)
    leaves = [
        [("a", rect(0, 0, 5, 5)), ("a2", rect(1, 1, 4, 4))],
        [("b", rect(5, 0, 10, 5)), ("b2", rect(6, 1, 9, 4))],
        [("c", rect(0, 5, 5, 10)), ("c2", rect(1, 6, 4, 9))],
        [("d", rect(5, 5, 10, 10)), ("d2", rect(6, 6, 9, 9))],
    ]
    return build_manual_tree(cfg, leaves)


class TestFootnote4:
    def test_external_granules_empty_when_leaves_tile(self):
        tree, names = tiling_tree()
        gs = GranuleSet(tree)
        root = tree.node(names["root"], count_io=False)
        assert gs.external_region(root).is_empty()
        assert gs.coverage_leftover().is_empty()

    def test_no_scan_ever_locks_an_external_granule(self):
        tree, names = tiling_tree()
        index = PhantomProtectedRTree(RTreeConfig(max_entries=4, universe=TEN))
        adopt_manual_tree(index, tree, names)
        probes = [
            rect(1, 1, 2, 2),          # inside one tile
            rect(4, 4, 6, 6),          # straddles all four tiles
            rect(0, 0, 10, 10),        # everything
            Rect.from_point((5.0, 5.0)),  # exactly on the seams
        ]
        for probe in probes:
            refs = index.granules.overlapping(probe)
            assert refs, probe
            assert all(ref.resource.namespace is Namespace.LEAF for ref in refs), probe

    def test_leaf_granules_are_disjoint(self):
        tree, _names = tiling_tree()
        leaves = [leaf.mbr() for leaf in tree.iter_leaves()]
        for i, a in enumerate(leaves):
            for b in leaves[i + 1 :]:
                assert not a.intersects_open(b)

    def test_operations_take_only_leaf_and_object_locks(self):
        tree, names = tiling_tree()
        index = PhantomProtectedRTree(RTreeConfig(max_entries=4, universe=TEN))
        adopt_manual_tree(index, tree, names)
        with index.transaction() as txn:
            scan = index.read_scan(txn, rect(3, 3, 7, 7))
            ins = index.insert(txn, "new", rect(2.2, 2.2, 2.4, 2.4))
        for result in (scan, ins):
            for resource, _mode, _duration in result.locks_taken:
                assert resource.namespace in (Namespace.LEAF, Namespace.OBJECT)
