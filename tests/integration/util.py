"""Helpers for the concurrency integration tests."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.concurrency import History, SimulatedWait, Simulator
from repro.core import InsertionPolicy, PhantomProtectedRTree
from repro.geometry import Rect
from repro.lock import LockManager
from repro.rtree.tree import RTreeConfig

TEN = Rect((0.0, 0.0), (10.0, 10.0))


def make_sim_index(
    policy: InsertionPolicy = InsertionPolicy.ON_GROWTH,
    max_entries: int = 4,
    universe: Rect = TEN,
    seed: int = 0,
    trace: bool = False,
) -> Tuple[Simulator, PhantomProtectedRTree, History]:
    """A simulator-wired DGL index with history recording."""
    sim = Simulator(seed=seed)
    lm = LockManager(wait_strategy=SimulatedWait(sim), trace=trace)
    history = History()
    index = PhantomProtectedRTree(
        RTreeConfig(max_entries=max_entries, universe=universe),
        lock_manager=lm,
        policy=policy,
        history=history,
        clock=lambda: sim.clock,
    )
    return sim, index, history


def adopt_manual_tree(index: PhantomProtectedRTree, tree, names) -> None:
    """Swap a hand-built tree (tests.conftest.build_manual_tree) into an
    index, rewiring everything that referenced the old tree."""
    index.tree = tree
    index.protocol.tree = tree
    index.protocol.granules.tree = tree
