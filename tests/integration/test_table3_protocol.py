"""Table 3: assert the exact locks each operation acquires.

Each test drives one operation against a hand-built tree and compares the
operation's recorded lock set -- (resource, mode, duration) triples --
with the corresponding row of the paper's Table 3.
"""

import pytest

from repro.core import InsertionPolicy, PhantomProtectedRTree
from repro.geometry import Rect
from repro.lock.modes import LockDuration, LockMode
from repro.lock.resource import Namespace, ResourceId
from repro.rtree.tree import RTreeConfig

from tests.conftest import build_manual_tree, rect
from tests.integration.util import TEN, adopt_manual_tree

S, X, IX, SIX = LockMode.S, LockMode.X, LockMode.IX, LockMode.SIX
SHORT, COMMIT = LockDuration.SHORT, LockDuration.COMMIT

LEAVES = [
    [("a1", rect(1, 1, 2, 2)), ("a2", rect(2.5, 2.5, 3, 3))],  # g1: BR (1,1)-(3,3)
    [("b1", rect(6, 6, 7, 7)), ("b2", rect(8, 8, 9, 9))],  # g2: BR (6,6)-(9,9)
]


def make_index(policy=InsertionPolicy.ON_GROWTH, leaves=LEAVES, grouping=()):
    index = PhantomProtectedRTree(
        RTreeConfig(max_entries=4, universe=TEN), policy=policy
    )
    cfg = RTreeConfig(max_entries=4, min_entries=2, universe=TEN)
    tree, names = build_manual_tree(cfg, leaves, grouping)
    adopt_manual_tree(index, tree, names)
    return index, names


def lock_set(result):
    return set(result.locks_taken)


class TestReadOperations:
    def test_read_scan_s_on_all_overlapping_granules(self):
        index, names = make_index()
        with index.transaction() as txn:
            res = index.read_scan(txn, rect(2, 2, 7, 7))  # g1, g2 and ext(root)
        assert lock_set(res) == {
            (ResourceId.leaf(names["leaf0"]), S, COMMIT),
            (ResourceId.leaf(names["leaf1"]), S, COMMIT),
            (ResourceId.ext(names["root"]), S, COMMIT),
        }

    def test_read_scan_inside_one_granule(self):
        index, names = make_index()
        with index.transaction() as txn:
            res = index.read_scan(txn, rect(1.2, 1.2, 1.8, 1.8))
        assert lock_set(res) == {(ResourceId.leaf(names["leaf0"]), S, COMMIT)}

    def test_read_single_locks_object_only(self):
        index, _names = make_index()
        with index.transaction() as txn:
            res = index.read_single(txn, "a1", rect(1, 1, 2, 2))
        assert res.found
        assert lock_set(res) == {(ResourceId.obj("a1"), S, COMMIT)}

    def test_read_single_missing_takes_no_locks(self):
        index, _names = make_index()
        with index.transaction() as txn:
            res = index.read_single(txn, "nope", rect(4, 4, 5, 5))
        assert not res.found
        assert res.locks_taken == []


class TestUpdateOperations:
    def test_update_single_ix_granule_x_object(self):
        index, names = make_index()
        with index.transaction() as txn:
            res = index.update_single(txn, "a1", rect(1, 1, 2, 2), payload="p")
        assert lock_set(res) == {
            (ResourceId.leaf(names["leaf0"]), IX, COMMIT),
            (ResourceId.obj("a1"), X, COMMIT),
        }

    def test_update_scan_six_cover_s_rest_x_objects(self):
        index, names = make_index()
        predicate = rect(1.2, 1.2, 2.8, 2.8)  # strictly inside g1
        with index.transaction() as txn:
            res = index.update_scan(txn, predicate, lambda o, r, old: "v")
        assert lock_set(res) == {
            (ResourceId.leaf(names["leaf0"]), SIX, COMMIT),
            (ResourceId.obj("a1"), X, COMMIT),
            (ResourceId.obj("a2"), X, COMMIT),
        }

    def test_update_scan_spanning_granules(self):
        index, names = make_index()
        predicate = rect(2, 2, 7, 7)
        with index.transaction() as txn:
            res = index.update_scan(txn, predicate, lambda o, r, old: "v")
        locks = lock_set(res)
        # every overlapping granule is locked in SIX (cover) or S (rest)
        granule_locks = {
            (r, m) for r, m, d in locks if r.namespace is not Namespace.OBJECT
        }
        covered = {r for r, m in granule_locks}
        assert covered == {
            ResourceId.leaf(names["leaf0"]),
            ResourceId.leaf(names["leaf1"]),
            ResourceId.ext(names["root"]),
        }
        assert all(m in (S, SIX) for _r, m in granule_locks)
        assert any(m is SIX for _r, m in granule_locks)
        # updated objects all X-locked
        assert {(ResourceId.obj("a2"), X, COMMIT), (ResourceId.obj("b1"), X, COMMIT)} <= locks


class TestInsertRows:
    def test_insert_no_boundary_change_modified_policy(self):
        """Row 'Insert (No split or granule change)': IX on g, X on object."""
        index, names = make_index(InsertionPolicy.ON_GROWTH)
        with index.transaction() as txn:
            res = index.insert(txn, "new", rect(1.4, 1.4, 1.6, 1.6))
        assert not res.changed_boundaries
        assert lock_set(res) == {
            (ResourceId.leaf(names["leaf0"]), IX, COMMIT),
            (ResourceId.obj("new"), X, COMMIT),
        }

    def test_insert_no_boundary_change_base_policy_locks_all_overlapping(self):
        """Under ALL_PATHS even a non-growing insert takes short IX on all
        granules overlapping the object."""
        index, names = make_index(InsertionPolicy.ALL_PATHS)
        with index.transaction() as txn:
            res = index.insert(txn, "new", rect(1.4, 1.4, 1.6, 1.6))
        assert lock_set(res) == {
            (ResourceId.leaf(names["leaf0"]), IX, COMMIT),
            (ResourceId.obj("new"), X, COMMIT),
        }
        # object interior to g1: the only overlapping granule is g1 itself,
        # so no extra locks materialise; an object poking into ext space
        # does produce one:
        with index.transaction() as txn:
            res = index.insert(txn, "new2", rect(2.9, 1.0, 3.5, 1.5))
        assert (ResourceId.ext(names["root"]), IX, SHORT) in lock_set(res) or (
            ResourceId.ext(names["root"]), SIX, SHORT
        ) in lock_set(res)

    def test_insert_granule_change_row(self):
        """Row 'Insert (Granule change)': commit IX on g, X on object,
        short IX on overlapping granules, short SIX on changed ext(P)."""
        index, names = make_index(InsertionPolicy.ON_GROWTH)
        # grows g1 into ext(root): (3,3) -> (3.5,3.5)-ish corner
        with index.transaction() as txn:
            res = index.insert(txn, "new", rect(2.8, 2.8, 3.5, 3.5))
        assert res.changed_boundaries
        locks = lock_set(res)
        assert (ResourceId.leaf(names["leaf0"]), IX, COMMIT) in locks
        assert (ResourceId.obj("new"), X, COMMIT) in locks
        assert (ResourceId.ext(names["root"]), SIX, SHORT) in locks
        # growth region lies in ext(root) only; no foreign leaf granule
        assert (ResourceId.leaf(names["leaf1"]), IX, SHORT) not in locks

    def test_insert_growth_into_sibling_takes_short_ix(self):
        # custom geometry: sibling granules overlap the growth region
        leaves = [
            [("a1", rect(0, 0, 1, 1)), ("a2", rect(5, 5, 6, 6))],  # g1 (0,0)-(6,6)
            [("b1", rect(7, 1, 7.5, 1.5)), ("b2", rect(8.5, 1.5, 9, 2))],  # g2
        ]
        index, names = make_index(InsertionPolicy.ON_GROWTH, leaves=leaves)
        # goes to g2 (least enlargement), growing it across g1's interior
        with index.transaction() as txn:
            res = index.insert(txn, "new", rect(5.0, 1.0, 7.2, 1.8))
        locks = lock_set(res)
        assert (ResourceId.leaf(names["leaf1"]), IX, COMMIT) in locks
        assert (ResourceId.leaf(names["leaf0"]), IX, SHORT) in locks  # grown-into sibling
        assert (ResourceId.ext(names["root"]), SIX, SHORT) in locks

    def test_insert_node_split_row(self):
        """Row 'Insert (Node split)': short SIX on g before the split, IX
        on g1 and g2 after (no S lock held on g)."""
        index, names = make_index(InsertionPolicy.ON_GROWTH)
        # fill g1 to capacity (4 entries)
        with index.transaction() as txn:
            index.insert(txn, "f1", rect(1.1, 2.0, 1.3, 2.2))
            index.insert(txn, "f2", rect(2.0, 1.1, 2.2, 1.3))
        with index.transaction() as txn:
            res = index.insert(txn, "splitter", rect(1.8, 1.8, 2.0, 2.0))
        assert res.report is not None and res.report.splits
        split = res.report.splits[0]
        locks = lock_set(res)
        assert (ResourceId.leaf(names["leaf0"]), SIX, SHORT) in locks
        assert (ResourceId.leaf(split.left_id), IX, COMMIT) in locks
        assert (ResourceId.leaf(split.right_id), IX, COMMIT) in locks
        assert (ResourceId.obj("splitter"), X, COMMIT) in locks

    def test_insert_split_with_own_s_lock_takes_six_halves(self):
        """§3.5: if the splitting inserter itself held S on g, it takes
        SIX on both halves and S on ext(parent)."""
        index, names = make_index(InsertionPolicy.ON_GROWTH)
        with index.transaction() as txn:
            index.insert(txn, "f1", rect(1.1, 2.0, 1.3, 2.2))
            index.insert(txn, "f2", rect(2.0, 1.1, 2.2, 1.3))
        txn = index.begin()
        index.read_scan(txn, rect(1.2, 1.2, 1.4, 1.4))  # S on g1
        res = index.insert(txn, "splitter", rect(1.8, 1.8, 2.0, 2.0))
        split = res.report.splits[0]
        locks = lock_set(res)
        assert (ResourceId.leaf(split.left_id), SIX, COMMIT) in locks
        assert (ResourceId.leaf(split.right_id), SIX, COMMIT) in locks
        assert (ResourceId.ext(names["root"]), S, COMMIT) in locks
        index.commit(txn)


class TestDeleteRows:
    def test_logical_delete_row(self):
        """Row 'Delete (Logical)': IX on g, X on object, nothing else."""
        index, names = make_index()
        with index.transaction() as txn:
            res = index.delete(txn, "a1", rect(1, 1, 2, 2))
        assert res.found
        assert lock_set(res) == {
            (ResourceId.leaf(names["leaf0"]), IX, COMMIT),
            (ResourceId.obj("a1"), X, COMMIT),
        }

    def test_delete_missing_scans_like_readscan(self):
        """§3.6: deleting a non-existent object takes S locks on all
        overlapping granules, 'just like a ReadScan'."""
        index, names = make_index()
        with index.transaction() as txn:
            res = index.delete(txn, "ghost", rect(4, 4, 5, 5))  # ext space
        assert not res.found
        assert (ResourceId.ext(names["root"]), S, COMMIT) in lock_set(res)

    def test_deferred_delete_simple_row(self):
        """Row 'Delete (Deferred)', no underflow: short IX on g, X on
        object, short SIX on shrinking ext ancestors."""
        leaves = [
            # three entries so removing one does not underflow (min = 2)
            [("a1", rect(1, 1, 2, 2)), ("a2", rect(2.5, 2.5, 3, 3)), ("a3", rect(1.5, 1.5, 2.5, 2.5))],
            [("b1", rect(6, 6, 7, 7)), ("b2", rect(8, 8, 9, 9))],
        ]
        index, names = make_index(leaves=leaves)
        lm = index.lock_manager
        with index.transaction() as txn:
            index.delete(txn, "a2", rect(2.5, 2.5, 3, 3))  # boundary object
        lm.tracing = True
        lm.clear_trace()
        assert index.vacuum() == 1
        trace = {(e.resource, e.mode, e.duration) for e in lm.trace}
        assert (ResourceId.leaf(names["leaf0"]), IX, SHORT) in trace
        assert (ResourceId.obj("a2"), X, COMMIT) in trace
        # a2 touched g1's boundary, so ext(root) shrank
        assert (ResourceId.ext(names["root"]), SIX, SHORT) in trace
        # no SIX on the granule itself in the non-underflow case
        assert (ResourceId.leaf(names["leaf0"]), SIX, SHORT) not in trace

    def test_deferred_delete_underflow_takes_six(self):
        """Row 'Delete (Deferred)', node becomes underfull: short SIX on g,
        plus IX fences on the orphaned entries' regions."""
        index, names = make_index()  # g1 = {a1, a2}, min fill 2
        lm = index.lock_manager
        with index.transaction() as txn:
            index.delete(txn, "a2", rect(2.5, 2.5, 3, 3))
        lm.tracing = True
        lm.clear_trace()
        assert index.vacuum() == 1  # removes a2 -> g1 underflows, a1 orphaned
        trace = {(e.resource, e.mode, e.duration) for e in lm.trace}
        assert (ResourceId.leaf(names["leaf0"]), SIX, SHORT) in trace
        assert (ResourceId.obj("a2"), X, COMMIT) in trace
        # a1 survives, re-inserted somewhere in the tree
        with index.transaction() as txn:
            assert index.read_single(txn, "a1", rect(1, 1, 2, 2)).found
