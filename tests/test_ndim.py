"""The whole stack is dimension-generic: 1-D, 3-D and 4-D smoke tests.

The paper develops the protocol for 2-D figures but nothing in it is
dimension-specific; neither is this implementation.  These tests run the
full transactional stack in other dimensionalities.
"""

import random

import pytest

from repro.core import PhantomProtectedRTree
from repro.geometry import Rect
from repro.rtree import RTree, RTreeConfig, validate_tree


def make_universe(dim):
    return Rect([0.0] * dim, [1.0] * dim)


def random_box(rng, dim, extent=0.05):
    lo = [rng.random() * (1 - extent) for _ in range(dim)]
    hi = [v + rng.random() * extent for v in lo]
    return Rect(lo, hi)


@pytest.mark.parametrize("dim", [1, 3, 4])
class TestNDimensional:
    def test_rtree_roundtrip(self, dim):
        rng = random.Random(dim)
        tree = RTree(RTreeConfig(max_entries=6, universe=make_universe(dim)))
        objects = {i: random_box(rng, dim) for i in range(300)}
        for oid, rect in objects.items():
            tree.insert(oid, rect)
        validate_tree(tree)
        probe = random_box(rng, dim, extent=0.4)
        got = sorted(e.oid for e in tree.search(probe))
        want = sorted(oid for oid, r in objects.items() if r.intersects(probe))
        assert got == want
        for oid in list(objects)[:150]:
            tree.delete(oid, objects.pop(oid))
        validate_tree(tree)

    def test_granules_cover_space(self, dim):
        rng = random.Random(dim + 10)
        index = PhantomProtectedRTree(
            RTreeConfig(max_entries=5, universe=make_universe(dim))
        )
        with index.transaction() as txn:
            for i in range(150):
                index.insert(txn, i, random_box(rng, dim))
        assert index.granules.coverage_leftover().is_empty()

    def test_transactional_scan_protocol(self, dim):
        rng = random.Random(dim + 20)
        index = PhantomProtectedRTree(
            RTreeConfig(max_entries=5, universe=make_universe(dim))
        )
        objects = {i: random_box(rng, dim) for i in range(120)}
        with index.transaction() as txn:
            for oid, rect in objects.items():
                index.insert(txn, oid, rect)
        probe = random_box(rng, dim, extent=0.5)
        with index.transaction() as txn:
            result = index.read_scan(txn, probe)
            assert result.locks_taken, "scan must take granule locks"
        want = sorted(str(oid) for oid, r in objects.items() if r.intersects(probe))
        assert sorted(map(str, result.oids)) == want

    def test_deletes_and_vacuum(self, dim):
        rng = random.Random(dim + 30)
        index = PhantomProtectedRTree(
            RTreeConfig(max_entries=5, universe=make_universe(dim))
        )
        objects = {i: random_box(rng, dim) for i in range(100)}
        with index.transaction() as txn:
            for oid, rect in objects.items():
                index.insert(txn, oid, rect)
        with index.transaction() as txn:
            for oid in list(objects)[:60]:
                index.delete(txn, oid, objects[oid])
        assert index.vacuum() == 60
        validate_tree(index.tree)
        assert index.tree.size == 40
