"""Unit tests for lock modes: the paper's Table 1, exactly."""

import pytest

from repro.lock.modes import (
    MODE_ORDER,
    LockMode,
    compatible,
    covers,
    is_intention,
    supremum,
)

IS, IX, S, SIX, X = LockMode.IS, LockMode.IX, LockMode.S, LockMode.SIX, LockMode.X

# Table 1, row = requested, column = held.
PAPER_TABLE_1 = {
    IS: {IS: True, IX: True, S: True, SIX: True, X: False},
    IX: {IS: True, IX: True, S: False, SIX: False, X: False},
    S: {IS: True, IX: False, S: True, SIX: False, X: False},
    SIX: {IS: True, IX: False, S: False, SIX: False, X: False},
    X: {IS: False, IX: False, S: False, SIX: False, X: False},
}


class TestTable1:
    @pytest.mark.parametrize("requested", list(LockMode))
    @pytest.mark.parametrize("held", list(LockMode))
    def test_matches_paper_matrix(self, requested, held):
        assert compatible(requested, held) == PAPER_TABLE_1[requested][held]

    def test_matrix_is_symmetric(self):
        for a in LockMode:
            for b in LockMode:
                assert compatible(a, b) == compatible(b, a)

    def test_x_conflicts_with_everything(self):
        assert all(not compatible(X, m) for m in LockMode)

    def test_six_only_compatible_with_is(self):
        """SIX conflicts with all lock modes except IS -- the property §3.3
        relies on to fence external-granule changes."""
        for m in LockMode:
            assert compatible(SIX, m) == (m is IS)


class TestLattice:
    def test_supremum_s_ix_is_six(self):
        """The paper defines SIX as the union of S and IX."""
        assert supremum(S, IX) == SIX
        assert supremum(IX, S) == SIX

    def test_supremum_idempotent(self):
        for m in LockMode:
            assert supremum(m, m) == m

    def test_supremum_with_x_is_x(self):
        for m in LockMode:
            assert supremum(m, X) == X

    def test_supremum_is_absorbed(self):
        for m in LockMode:
            assert supremum(m, IS) == m

    def test_covers_reflexive(self):
        for m in LockMode:
            assert covers(m, m)

    def test_covers_chain(self):
        assert covers(X, SIX)
        assert covers(SIX, S)
        assert covers(SIX, IX)
        assert covers(S, IS)
        assert covers(IX, IS)
        assert not covers(S, IX)
        assert not covers(IX, S)

    def test_stronger_mode_conflicts_superset(self):
        """If a covers b, anything conflicting with b conflicts with a --
        the monotonicity that makes supremum-based granting sound."""
        for a in LockMode:
            for b in LockMode:
                if covers(a, b):
                    for other in LockMode:
                        if not compatible(other, b):
                            assert not compatible(other, a)

    def test_mode_order_is_topological(self):
        for i, weaker in enumerate(MODE_ORDER):
            for stronger in MODE_ORDER[i + 1 :]:
                assert not covers(weaker, stronger) or weaker == stronger

    def test_is_intention(self):
        assert is_intention(IS) and is_intention(IX)
        assert not is_intention(S) and not is_intention(SIX) and not is_intention(X)
