"""Unit tests for protocol internals (OpContext, want ordering, wants
construction) -- the integration suite covers behaviour; these cover the
small pure functions directly."""

from repro.core import InsertionPolicy, PhantomProtectedRTree
from repro.core.protocol import SHORT, COMMIT, GranuleLockProtocol, OpContext
from repro.geometry import Rect
from repro.lock.manager import LockManager
from repro.lock.modes import LockMode
from repro.lock.resource import ResourceId
from repro.rtree.tree import RTreeConfig

from tests.conftest import TEN, rect

S, X, IX, SIX = LockMode.S, LockMode.X, LockMode.IX, LockMode.SIX


class TestOpContext:
    def test_holds_covering_same_lock(self):
        ctx = OpContext("t")
        want = (ResourceId.leaf(1), IX, COMMIT)
        assert not ctx.holds_covering(*want)
        ctx.acquired.add(want)
        assert ctx.holds_covering(*want)

    def test_stronger_mode_covers_weaker(self):
        ctx = OpContext("t")
        ctx.acquired.add((ResourceId.leaf(1), SIX, COMMIT))
        assert ctx.holds_covering(ResourceId.leaf(1), IX, COMMIT)
        assert ctx.holds_covering(ResourceId.leaf(1), S, COMMIT)
        assert not ctx.holds_covering(ResourceId.leaf(1), X, COMMIT)

    def test_commit_covers_short_but_not_vice_versa(self):
        ctx = OpContext("t")
        ctx.acquired.add((ResourceId.leaf(1), IX, COMMIT))
        assert ctx.holds_covering(ResourceId.leaf(1), IX, SHORT)
        ctx2 = OpContext("t")
        ctx2.acquired.add((ResourceId.leaf(2), IX, SHORT))
        assert not ctx2.holds_covering(ResourceId.leaf(2), IX, COMMIT)

    def test_different_resource_never_covers(self):
        ctx = OpContext("t")
        ctx.acquired.add((ResourceId.leaf(1), X, COMMIT))
        assert not ctx.holds_covering(ResourceId.leaf(2), S, SHORT)


class TestDeadShortPruning:
    """The double-count bug: a SHORT entry in ``acquired`` whose lock was
    already released must not subsume a later SHORT want -- otherwise the
    operation proceeds without the fence it thinks it holds."""

    RES = ResourceId.leaf(7)

    def test_stale_short_would_double_count(self):
        # The raw repro: the bookkeeping says "held" after the lock died.
        lm = LockManager()
        ctx = OpContext("t")
        want = (self.RES, SIX, SHORT)
        assert lm.acquire("t", self.RES, SIX, SHORT, conditional=True)
        ctx.acquired.add(want)
        lm.end_operation("t")  # e.g. a retry wrapper finishing attempt #1
        # Without pruning, holds_covering still subsumes the dead fence...
        assert ctx.holds_covering(*want)
        # ...and pruning removes exactly that entry.
        ctx.prune_dead_shorts(lm)
        assert not ctx.holds_covering(*want)
        assert want not in ctx.acquired

    def test_prune_keeps_live_shorts_and_commit_locks(self):
        lm = LockManager()
        ctx = OpContext("t")
        live_short = (self.RES, IX, SHORT)
        commit_lock = (ResourceId.obj("o"), X, COMMIT)
        assert lm.acquire("t", self.RES, IX, SHORT, conditional=True)
        assert lm.acquire("t", ResourceId.obj("o"), X, COMMIT, conditional=True)
        ctx.acquired.update({live_short, commit_lock})
        ctx.prune_dead_shorts(lm)
        assert ctx.acquired == {live_short, commit_lock}
        lm.release_all("t")

    def test_end_operation_drops_short_bookkeeping(self):
        # Protocol-level: end_operation releases the short locks *and*
        # forgets them, so a reused context re-acquires its fences.
        lm = LockManager()
        index = PhantomProtectedRTree(RTreeConfig(max_entries=4, universe=TEN))
        protocol = GranuleLockProtocol(index.tree, lm)
        ctx = OpContext("t")
        want = (self.RES, SIX, SHORT)
        assert lm.acquire("t", self.RES, SIX, SHORT, conditional=True)
        ctx.acquired.add(want)
        ctx.taken.append(want)
        protocol.end_operation(ctx)
        assert not ctx.holds_covering(*want)
        # A later conditional pass must re-acquire, not skip, the fence.
        blocked = protocol._acquire_conditional(ctx, [want])
        assert blocked is None
        assert lm.locks_of("t").get(self.RES, {}).get((SIX, SHORT), 0) == 1
        lm.release_all("t")

    def test_restart_path_prunes(self):
        # _restart (called before every unconditional wait) re-validates
        # the bookkeeping against the lock manager.
        lm = LockManager()
        index = PhantomProtectedRTree(RTreeConfig(max_entries=4, universe=TEN))
        protocol = GranuleLockProtocol(index.tree, lm)
        ctx = OpContext("t")
        want = (self.RES, IX, SHORT)
        assert lm.acquire("t", self.RES, IX, SHORT, conditional=True)
        ctx.acquired.add(want)
        lm.end_operation("t")
        protocol._restart(ctx)
        assert ctx.restarts == 1
        assert not ctx.holds_covering(*want)

    def test_restart_fires_yield_hook(self):
        lm = LockManager()
        index = PhantomProtectedRTree(RTreeConfig(max_entries=4, universe=TEN))
        protocol = GranuleLockProtocol(index.tree, lm)
        seen = []
        protocol.yield_hook = lambda tag, ctx, resource=None: seen.append(tag)
        ctx = OpContext("t")
        protocol._restart(ctx)
        assert seen == ["restart"]


class TestWantOrdering:
    def test_sorted_by_namespace_then_key(self):
        wants = [
            (ResourceId.obj("zz"), X, COMMIT),
            (ResourceId.leaf(3), IX, COMMIT),
            (ResourceId.ext(7), SIX, SHORT),
            (ResourceId.leaf(1), S, COMMIT),
        ]
        ordered = GranuleLockProtocol._ordered(wants)
        namespaces = [w[0].namespace.value for w in ordered]
        assert namespaces == sorted(namespaces)
        leaf_keys = [w[0].key for w in ordered if w[0].namespace.value == "leaf"]
        assert leaf_keys == sorted(leaf_keys, key=repr)

    def test_order_is_total_and_stable(self):
        wants = [(ResourceId.leaf(i), IX, SHORT) for i in (5, 3, 9, 1)]
        a = GranuleLockProtocol._ordered(wants)
        b = GranuleLockProtocol._ordered(list(reversed(wants)))
        assert [w[0] for w in a] == [w[0] for w in b]


class TestInsertWants:
    def make(self, policy):
        index = PhantomProtectedRTree(
            RTreeConfig(max_entries=8, universe=TEN), policy=policy
        )
        with index.transaction() as txn:
            index.insert(txn, "seed1", rect(1, 1, 2, 2))
            index.insert(txn, "seed2", rect(3, 3, 4, 4))
        return index

    def test_naive_wants_minimal(self):
        index = self.make(InsertionPolicy.NAIVE)
        plan = index.tree.plan_insert(rect(8, 8, 9, 9))  # boundary-changing
        ctx = OpContext("t")
        wants = index.protocol._insert_wants(ctx, plan, "new", rect(8, 8, 9, 9))
        assert wants == [
            (ResourceId.leaf(plan.leaf_id), IX, COMMIT),
            (ResourceId.obj("new"), X, COMMIT),
        ]

    def test_on_growth_adds_fences_only_when_growing(self):
        index = self.make(InsertionPolicy.ON_GROWTH)
        # force height >= 2 so growth has external granules to change
        with index.transaction() as txn:
            for i in range(8):
                index.insert(txn, f"fill{i}", rect(i, 0.2, i + 0.5, 0.6))
        assert index.tree.height >= 2
        interior = index.tree.plan_insert(rect(1.5, 1.5, 1.8, 1.8))
        ctx = OpContext("t")
        wants = index.protocol._insert_wants(ctx, interior, "new", rect(1.5, 1.5, 1.8, 1.8))
        if not interior.changes_boundaries:
            assert len(wants) == 2  # IX + X only
        growing = index.tree.plan_insert(rect(8, 8, 9, 9))
        assert growing.changes_boundaries
        wants = index.protocol._insert_wants(ctx, growing, "new2", rect(8, 8, 9, 9))
        assert len(wants) > 2
        assert any(m is SIX and d is SHORT for _r, m, d in wants)

    def test_all_paths_always_fences_overlapping(self):
        index = self.make(InsertionPolicy.ALL_PATHS)
        # an object poking into dead space overlaps ext(root)... single
        # leaf root? ensure height 2 first
        with index.transaction() as txn:
            for i in range(8):
                index.insert(txn, f"fill{i}", rect(i, 0.2, i + 0.5, 0.6))
        assert index.tree.height >= 2
        plan = index.tree.plan_insert(rect(5, 8, 5.5, 8.5))
        ctx = OpContext("t")
        wants = index.protocol._insert_wants(ctx, plan, "new", rect(5, 8, 5.5, 8.5))
        assert any(r.namespace.value == "ext" for r, _m, _d in wants)

    def test_split_plan_requests_short_six_on_target(self):
        index = self.make(InsertionPolicy.ON_GROWTH)
        with index.transaction() as txn:
            for i in range(6):
                index.insert(txn, f"fill{i}", rect(1 + i * 0.1, 1, 1.05 + i * 0.1, 1.1))
        plan = index.tree.plan_insert(rect(1.5, 1.5, 1.6, 1.6))
        if plan.leaf_splits:
            ctx = OpContext("t")
            wants = index.protocol._insert_wants(ctx, plan, "new", rect(1.5, 1.5, 1.6, 1.6))
            assert (ResourceId.leaf(plan.leaf_id), SIX, SHORT) in wants
